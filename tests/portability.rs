//! The portability claims of Sections 2 and 4: identical application
//! code and coprocessor FSMs across device sizes, VIM policies and
//! interface tunings — only the "module recompile" (configuration)
//! changes, and outputs stay bit-identical.

use vcop::{PolicyKind, PrefetchMode, TransferMode};
use vcop_bench::experiments::{idea_vim, ExperimentOptions};
use vcop_fabric::DeviceProfile;

#[test]
fn idea_output_identical_across_devices() {
    // idea_vim verifies the ciphertext against the software reference
    // internally, so a successful run *is* the bit-exactness proof; here
    // we additionally check the paging behaviour scales with the memory.
    let mut faults = Vec::new();
    for device in [
        DeviceProfile::epxa1(),
        DeviceProfile::epxa4(),
        DeviceProfile::epxa10(),
    ] {
        let opts = ExperimentOptions {
            device,
            ..Default::default()
        };
        let run = idea_vim(16, &opts);
        faults.push(run.report.faults);
    }
    assert!(
        faults[0] > faults[1] && faults[1] >= faults[2],
        "larger interface memories must fault no more: {faults:?}"
    );
    assert_eq!(faults[2], 0, "EPXA10 holds the whole 32 KB dataset");
}

#[test]
fn idea_output_identical_across_policies() {
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Clock,
    ] {
        let opts = ExperimentOptions {
            policy,
            ..Default::default()
        };
        // Internal assertion checks the ciphertext.
        let run = idea_vim(16, &opts);
        assert!(run.report.total() > vcop_sim::time::SimTime::ZERO);
    }
}

#[test]
fn idea_output_identical_across_tunings() {
    for prefetch in [PrefetchMode::None, PrefetchMode::NextPage { degree: 2 }] {
        for transfer in [TransferMode::Double, TransferMode::Single] {
            for pipeline_depth in [1usize, 4] {
                let opts = ExperimentOptions {
                    prefetch,
                    transfer,
                    pipeline_depth,
                    ..Default::default()
                };
                let run = idea_vim(8, &opts);
                assert!(run.speedup() > 1.0);
            }
        }
    }
}

#[test]
fn single_transfer_strictly_faster() {
    let double = idea_vim(16, &ExperimentOptions::default());
    let single = idea_vim(
        16,
        &ExperimentOptions {
            transfer: TransferMode::Single,
            ..Default::default()
        },
    );
    assert!(single.report.sw_dp < double.report.sw_dp);
    assert!(single.report.total() < double.report.total());
    // Hardware time is untouched by the copy strategy, up to the
    // clock-edge quantisation of each OS stall (one coprocessor period
    // per fault at most).
    let tolerance = vcop_apps::timing::IDEA_CORE_FREQ.cycles(single.report.faults + 1);
    let diff = single
        .report
        .hw
        .max(double.report.hw)
        .saturating_sub(single.report.hw.min(double.report.hw));
    assert!(diff <= tolerance, "hw differs by {diff}");
}

#[test]
fn pipelined_imu_reduces_hw_time() {
    let proto = idea_vim(8, &ExperimentOptions::default());
    let piped = idea_vim(
        8,
        &ExperimentOptions {
            pipeline_depth: 4,
            ..Default::default()
        },
    );
    assert!(
        piped.report.hw < proto.report.hw,
        "pipelined {} !< prototype {}",
        piped.report.hw,
        proto.report.hw
    );
}

#[test]
fn prefetch_reduces_faults_on_sequential_workload() {
    let base = idea_vim(32, &ExperimentOptions::default());
    let pf = idea_vim(
        32,
        &ExperimentOptions {
            prefetch: PrefetchMode::NextPage { degree: 1 },
            ..Default::default()
        },
    );
    assert!(
        pf.report.faults < base.report.faults,
        "prefetch {} !< base {}",
        pf.report.faults,
        base.report.faults
    );
}

#[test]
fn overlapped_prefetch_hides_copy_time() {
    // The paper's closing future work: prefetching that overlaps
    // processor and coprocessor execution. Results stay bit-exact
    // (checked inside idea_vim) and wall time drops below the serial
    // component sum.
    let sync = idea_vim(
        32,
        &ExperimentOptions {
            prefetch: PrefetchMode::NextPage { degree: 1 },
            ..Default::default()
        },
    );
    let overlapped = idea_vim(
        32,
        &ExperimentOptions {
            prefetch: PrefetchMode::NextPage { degree: 1 },
            overlap: true,
            ..Default::default()
        },
    );
    // Without overlap, wall time equals the serial sum exactly.
    assert_eq!(sync.report.total(), sync.report.cpu_and_hw_time());
    assert_eq!(sync.report.overlap_saved(), vcop_sim::time::SimTime::ZERO);
    // With overlap, part of the copy work hides under hardware time.
    assert!(
        overlapped.report.overlap_saved() > vcop_sim::time::SimTime::ZERO,
        "no work was hidden"
    );
    assert!(overlapped.report.total() < sync.report.total());
}

#[test]
fn overlap_without_prefetch_still_speeds_demand_paging() {
    // Without prefetch, overlapped paging cannot hide work under
    // execution (the coprocessor waits on every movement), but the
    // demand path now costs a DMA burst transfer instead of a CPU copy
    // loop: same fault behaviour, bit-exact results (checked inside
    // idea_vim), strictly shorter wall time.
    let base = idea_vim(16, &ExperimentOptions::default());
    let overlap_only = idea_vim(
        16,
        &ExperimentOptions {
            overlap: true,
            ..Default::default()
        },
    );
    assert_eq!(base.report.faults, overlap_only.report.faults);
    assert!(
        overlap_only.report.total() < base.report.total(),
        "DMA demand paging {} !< CPU copy loop {}",
        overlap_only.report.total(),
        base.report.total()
    );
}

#[test]
fn adaptive_policy_matches_fifo_on_sequential_and_beats_it_on_thrash() {
    use vcop_bench::experiments::matmul_vim;
    // Sequential workload: no thrash, adaptive behaves exactly like FIFO.
    let fifo_seq = idea_vim(32, &ExperimentOptions::default());
    let adaptive_seq = idea_vim(
        32,
        &ExperimentOptions {
            policy: PolicyKind::Adaptive,
            ..Default::default()
        },
    );
    assert_eq!(fifo_seq.report.faults, adaptive_seq.report.faults);

    // Strided matmul: cyclic over-capacity reuse thrashes FIFO; the
    // adaptive policy detects the refault storm and recovers most of
    // random's advantage.
    let fifo_mm = matmul_vim(64, &ExperimentOptions::default());
    let adaptive_mm = matmul_vim(
        64,
        &ExperimentOptions {
            policy: PolicyKind::Adaptive,
            ..Default::default()
        },
    );
    assert!(
        (adaptive_mm.report.faults as f64) < fifo_mm.report.faults as f64 * 0.75,
        "adaptive {} !<< fifo {}",
        adaptive_mm.report.faults,
        fifo_mm.report.faults
    );
}
