//! End-to-end integration tests: full applications through the complete
//! platform (fabric + IMU + VIM + syscalls).

use vcop::{Direction, ElemSize, Error, MapHints, SystemBuilder};
use vcop_apps::adpcm::codec as adpcm_codec;
use vcop_apps::adpcm::hw::{AdpcmCoprocessor, OBJ_INPUT as ADPCM_IN, OBJ_OUTPUT as ADPCM_OUT};
use vcop_apps::idea::cipher as idea;
use vcop_apps::idea::hw::{IdeaCoprocessor, OBJ_INPUT as IDEA_IN, OBJ_OUTPUT as IDEA_OUT};
use vcop_apps::timing;
use vcop_apps::vecadd::{VecAddCoprocessor, OBJ_A, OBJ_B, OBJ_C};
use vcop_fabric::bitstream::Bitstream;
use vcop_fabric::port::ObjectId;
use vcop_sim::time::SimTime;
use vcop_vim::VimError;

fn u32s(v: &[u8]) -> Vec<u32> {
    v.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn load_vecadd(system: &mut vcop::System) {
    let bs = Bitstream::builder("vecadd").synthetic_payload(1024).build();
    system
        .fpga_load(&bs.to_bytes(), Box::new(VecAddCoprocessor::new()))
        .expect("load");
}

#[test]
fn vecadd_small_resident_dataset() {
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    let n = 64u32;
    let a: Vec<u32> = (0..n).collect();
    let b: Vec<u32> = (0..n).map(|x| x * x).collect();
    system
        .fpga_map_object(
            OBJ_A,
            bytes(&a),
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_B,
            bytes(&b),
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_C,
            vec![0; 4 * n as usize],
            ElemSize::U32,
            Direction::Out,
            MapHints::default(),
        )
        .unwrap();
    let report = system.fpga_execute(&[n]).unwrap();
    // Everything fits: the initial mapping avoids all faults.
    assert_eq!(report.faults, 0);
    assert!(report.hw > SimTime::ZERO);
    let c = u32s(&system.take_object(OBJ_C).unwrap());
    let expect: Vec<u32> = (0..n).map(|x| x + x * x).collect();
    assert_eq!(c, expect);
}

#[test]
fn vecadd_oversized_dataset_pages_correctly() {
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    let n = 8192u32; // 3 × 32 KB of vectors, 6× the interface memory
    let a: Vec<u32> = (0..n).map(|x| x.wrapping_mul(2_654_435_761)).collect();
    let b: Vec<u32> = (0..n).map(|x| x.rotate_left(7)).collect();
    system
        .fpga_map_object(
            OBJ_A,
            bytes(&a),
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_B,
            bytes(&b),
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_C,
            vec![0; 4 * n as usize],
            ElemSize::U32,
            Direction::Out,
            MapHints::default(),
        )
        .unwrap();
    let report = system.fpga_execute(&[n]).unwrap();
    assert!(report.faults > 0, "dataset exceeds DP-RAM, must fault");
    assert!(
        report.page_writebacks > 0,
        "output pages must be written back"
    );
    let c = u32s(&system.take_object(OBJ_C).unwrap());
    let expect: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
    assert_eq!(c, expect);
}

#[test]
fn adpcm_end_to_end_matches_reference() {
    let pcm = adpcm_codec::synthetic_pcm(6 * 1024);
    let coded = adpcm_codec::encode(&pcm, &mut ());
    let (expected, _) = timing::adpcm_sw(&coded);

    let mut system = SystemBuilder::epxa1()
        .clocks(timing::ADPCM_CORE_FREQ, timing::ADPCM_IMU_FREQ)
        .build();
    let bs = Bitstream::builder("adpcmdecode")
        .synthetic_payload(2048)
        .build();
    system
        .fpga_load(&bs.to_bytes(), Box::new(AdpcmCoprocessor::new()))
        .unwrap();
    system
        .fpga_map_object(
            ADPCM_IN,
            coded.clone(),
            ElemSize::U8,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            ADPCM_OUT,
            vec![0; coded.len() * 4],
            ElemSize::U16,
            Direction::Out,
            MapHints::default(),
        )
        .unwrap();
    system.fpga_execute(&[coded.len() as u32]).unwrap();
    let out = adpcm_codec::samples_from_bytes(&system.take_object(ADPCM_OUT).unwrap());
    assert_eq!(out, expected);
}

#[test]
fn idea_encrypt_then_decrypt_on_same_core() {
    let key = idea::IdeaKey([11, 22, 33, 44, 55, 66, 77, 88]);
    let ek = idea::expand_key(key);
    let dk = idea::invert_subkeys(&ek);
    let pt = idea::synthetic_plaintext(8 * 1024);

    let mut system = SystemBuilder::epxa1()
        .clocks(timing::IDEA_CORE_FREQ, timing::IDEA_IMU_FREQ)
        .build();
    let bs = Bitstream::builder("idea").synthetic_payload(2048).build();
    system
        .fpga_load(&bs.to_bytes(), Box::new(IdeaCoprocessor::new()))
        .unwrap();

    let run = |data: &[u8], keys: &[u16; idea::SUBKEYS], system: &mut vcop::System| {
        system
            .fpga_map_object(
                IDEA_IN,
                idea::pack_words(data),
                ElemSize::U16,
                Direction::In,
                MapHints::default(),
            )
            .unwrap();
        system
            .fpga_map_object(
                IDEA_OUT,
                vec![0; data.len()],
                ElemSize::U16,
                Direction::Out,
                MapHints::default(),
            )
            .unwrap();
        let mut params = vec![(data.len() / idea::BLOCK_BYTES) as u32];
        params.extend(keys.iter().map(|&k| u32::from(k)));
        system.fpga_execute(&params).unwrap();
        let out = idea::unpack_words(&system.take_object(IDEA_OUT).unwrap());
        system.take_object(IDEA_IN);
        out
    };

    let ct = run(&pt, &ek, &mut system);
    assert_eq!(ct, idea::crypt_buffer(&pt, &ek, &mut ()));
    let back = run(&ct, &dk, &mut system);
    assert_eq!(back, pt);
}

#[test]
fn execute_without_coprocessor_fails() {
    let mut system = SystemBuilder::epxa1().build();
    assert!(matches!(
        system.fpga_execute(&[]),
        Err(Error::NoCoprocessor)
    ));
}

#[test]
fn exclusive_fabric_ownership() {
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    let bs = Bitstream::builder("second").build();
    let err = system
        .fpga_load(&bs.to_bytes(), Box::new(VecAddCoprocessor::new()))
        .unwrap_err();
    assert!(matches!(err, Error::Load(_)));
    system.fpga_release();
    load_vecadd(&mut system); // works again after release
}

#[test]
fn unmapped_object_access_is_reported() {
    // The coprocessor expects objects 0/1/2 but the application maps
    // only A and B: the access to C must surface as a protocol error.
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    let n = 16u32;
    system
        .fpga_map_object(
            OBJ_A,
            vec![0; 64],
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_B,
            vec![0; 64],
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    let err = system.fpga_execute(&[n]).unwrap_err();
    assert!(
        matches!(err, Error::Vim(VimError::UnknownObject(ObjectId(2)))),
        "got {err:?}"
    );
}

#[test]
fn out_of_bounds_access_is_reported() {
    // SIZE claims more elements than the mapped buffers hold.
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    system
        .fpga_map_object(
            OBJ_A,
            vec![0; 64],
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_B,
            vec![0; 64],
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_C,
            vec![0; 64],
            ElemSize::U32,
            Direction::Out,
            MapHints::default(),
        )
        .unwrap();
    let err = system.fpga_execute(&[100_000]).unwrap_err();
    assert!(
        matches!(err, Error::Vim(VimError::OutOfBounds { .. })),
        "got {err:?}"
    );
}

#[test]
fn mapping_validation() {
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    // Reserved id.
    assert!(matches!(
        system.fpga_map_object(
            ObjectId::PARAM,
            vec![0; 4],
            ElemSize::U32,
            Direction::In,
            MapHints::default()
        ),
        Err(Error::Vim(VimError::ReservedObject))
    ));
    // Empty buffer.
    assert!(matches!(
        system.fpga_map_object(
            OBJ_A,
            vec![],
            ElemSize::U32,
            Direction::In,
            MapHints::default()
        ),
        Err(Error::Vim(VimError::EmptyObject(_)))
    ));
    // Unaligned length.
    assert!(matches!(
        system.fpga_map_object(
            OBJ_A,
            vec![0; 6],
            ElemSize::U32,
            Direction::In,
            MapHints::default()
        ),
        Err(Error::Vim(VimError::UnalignedObject(_)))
    ));
    // Duplicate id.
    system
        .fpga_map_object(
            OBJ_A,
            vec![0; 8],
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    assert!(matches!(
        system.fpga_map_object(
            OBJ_A,
            vec![0; 8],
            ElemSize::U32,
            Direction::In,
            MapHints::default()
        ),
        Err(Error::Vim(VimError::DuplicateObject(_)))
    ));
}

#[test]
fn interrupts_are_counted() {
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    let n = 4096u32;
    system
        .fpga_map_object(
            OBJ_A,
            vec![1; 4 * n as usize],
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_B,
            vec![2; 4 * n as usize],
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            OBJ_C,
            vec![0; 4 * n as usize],
            ElemSize::U32,
            Direction::Out,
            MapHints::default(),
        )
        .unwrap();
    let report = system.fpga_execute(&[n]).unwrap();
    let line = system.irq().line(0).unwrap();
    // One interrupt per fault plus the end-of-operation interrupt.
    assert_eq!(system.irq().delivered_count(line), report.faults + 1);
}

#[test]
fn caller_sleeps_during_execution() {
    // "FPGA_EXECUTE ... puts the calling process in an interruptible
    // sleep mode" (Section 3.1): the sleep interval equals the operation
    // wall time and is available to other runnable processes.
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    let n = 1024u32;
    for (obj, dir) in [
        (OBJ_A, Direction::In),
        (OBJ_B, Direction::In),
        (OBJ_C, Direction::Out),
    ] {
        system
            .fpga_map_object(
                obj,
                vec![0; 4 * n as usize],
                ElemSize::U32,
                dir,
                MapHints::default(),
            )
            .unwrap();
    }
    assert_eq!(system.caller_sleep_time(), SimTime::ZERO);
    let report = system.fpga_execute(&[n]).unwrap();
    let slept = system.caller_sleep_time();
    assert!(
        slept >= report.hw,
        "caller slept at least the hardware time"
    );
    assert!(system.scheduler().cpu_made_available() >= report.hw);
}

#[test]
fn matmul_full_system_bit_exact() {
    use vcop_apps::matmul::{
        multiply, synthetic_matrix, MatMulCoprocessor, OBJ_A as MA, OBJ_B as MB, OBJ_C as MC,
    };
    let n = 24usize; // 3 × 2.25 KB: pages but stays fast in debug builds
    let a = synthetic_matrix(n, 5);
    let b = synthetic_matrix(n, 7);
    let expect = multiply(&a, &b, n, &mut ());

    let mut system = SystemBuilder::epxa1().build();
    let bs = Bitstream::builder("matmul").synthetic_payload(1024).build();
    system
        .fpga_load(&bs.to_bytes(), Box::new(MatMulCoprocessor::new()))
        .unwrap();
    let to_bytes = |m: &[u32]| -> Vec<u8> { m.iter().flat_map(|x| x.to_le_bytes()).collect() };
    system
        .fpga_map_object(
            MA,
            to_bytes(&a),
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            MB,
            to_bytes(&b),
            ElemSize::U32,
            Direction::In,
            MapHints::default(),
        )
        .unwrap();
    system
        .fpga_map_object(
            MC,
            vec![0; 4 * n * n],
            ElemSize::U32,
            Direction::Out,
            MapHints::default(),
        )
        .unwrap();
    system.fpga_execute(&[n as u32]).unwrap();
    let got: Vec<u32> = system
        .take_object(MC)
        .unwrap()
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn repeated_executions_accumulate_cleanly() {
    // Three back-to-back executions on one loaded core: counters grow,
    // results stay correct, no state leaks between runs.
    let mut system = SystemBuilder::epxa1().build();
    load_vecadd(&mut system);
    for round in 1..=3u32 {
        let n = 256 * round;
        let a: Vec<u32> = (0..n).map(|x| x + round).collect();
        let b: Vec<u32> = (0..n).map(|x| x * round).collect();
        system
            .fpga_map_object(
                OBJ_A,
                bytes(&a),
                ElemSize::U32,
                Direction::In,
                MapHints::default(),
            )
            .unwrap();
        system
            .fpga_map_object(
                OBJ_B,
                bytes(&b),
                ElemSize::U32,
                Direction::In,
                MapHints::default(),
            )
            .unwrap();
        system
            .fpga_map_object(
                OBJ_C,
                vec![0; 4 * n as usize],
                ElemSize::U32,
                Direction::Out,
                MapHints::default(),
            )
            .unwrap();
        system.fpga_execute(&[n]).unwrap();
        let c = u32s(&system.take_object(OBJ_C).unwrap());
        let expect: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        assert_eq!(c, expect, "round {round}");
        system.take_object(OBJ_A);
        system.take_object(OBJ_B);
    }
    let line = system.irq().line(0).unwrap();
    assert!(
        system.irq().delivered_count(line) >= 3,
        "one done IRQ per run"
    );
    assert_eq!(system.scheduler().len(), 2);
}

#[test]
fn hung_coprocessor_times_out() {
    /// A core that starts but never finishes and never accesses memory.
    #[derive(Debug)]
    struct Hang;
    impl vcop::Coprocessor for Hang {
        fn name(&self) -> &str {
            "hang"
        }
        fn reset(&mut self) {}
        fn step(&mut self, _port: &mut vcop_fabric::port::CoprocessorPort) {}
    }

    let mut system = SystemBuilder::epxa1().edge_budget(10_000).build();
    let bs = Bitstream::builder("hang").build();
    system.fpga_load(&bs.to_bytes(), Box::new(Hang)).unwrap();
    let err = system.fpga_execute(&[]).unwrap_err();
    assert!(matches!(err, Error::Timeout { budget: 10_000 }));
    // The caller must not be left asleep after the failure.
    let report = system.scheduler();
    assert!(report.cpu_made_available() > SimTime::ZERO);
}
