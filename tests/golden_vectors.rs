//! Golden-vector tests: the hardware cores must be bit-identical to
//! their software references on fixed seeded inputs, through the full
//! platform (fabric + IMU + VIM), in both synchronous and overlapped
//! paging modes. The seeded generators (`synthetic_pcm`,
//! `synthetic_plaintext`) are deterministic, so these are golden vectors
//! without checked-in blobs.

use vcop::{Direction, ElemSize, MapHints, SystemBuilder};
use vcop_apps::adpcm::codec as adpcm_codec;
use vcop_apps::adpcm::hw::{AdpcmCoprocessor, OBJ_INPUT as DEC_IN, OBJ_OUTPUT as DEC_OUT};
use vcop_apps::adpcm::hw_enc::{AdpcmEncCoprocessor, OBJ_INPUT as ENC_IN, OBJ_OUTPUT as ENC_OUT};
use vcop_apps::idea::cipher as idea;
use vcop_apps::idea::hw::{IdeaCoprocessor, OBJ_INPUT as IDEA_IN, OBJ_OUTPUT as IDEA_OUT};
use vcop_apps::timing;
use vcop_fabric::bitstream::Bitstream;
use vcop_fabric::resources::Resources;

fn seq() -> MapHints {
    MapHints {
        sequential: true,
        ..Default::default()
    }
}

fn adpcm_system(overlap: bool) -> vcop::System {
    SystemBuilder::epxa1()
        .clocks(timing::ADPCM_CORE_FREQ, timing::ADPCM_IMU_FREQ)
        .overlap(overlap)
        .build()
}

fn idea_system(overlap: bool) -> vcop::System {
    SystemBuilder::epxa1()
        .clocks(timing::IDEA_CORE_FREQ, timing::IDEA_IMU_FREQ)
        .overlap(overlap)
        .build()
}

/// Runs the hardware decoder on `coded` and returns the PCM samples.
fn hw_decode(coded: &[u8], overlap: bool) -> Vec<i16> {
    let mut system = adpcm_system(overlap);
    let bs = Bitstream::builder("adpcmdecode")
        .resources(Resources::new(1_100, 6_144))
        .core_clock(timing::ADPCM_CORE_FREQ)
        .synthetic_payload(48 * 1024)
        .build();
    system
        .fpga_load(&bs.to_bytes(), Box::new(AdpcmCoprocessor::new()))
        .expect("load decoder");
    system
        .fpga_map_object(DEC_IN, coded.to_vec(), ElemSize::U8, Direction::In, seq())
        .expect("map input");
    system
        .fpga_map_object(
            DEC_OUT,
            vec![0u8; coded.len() * 4],
            ElemSize::U16,
            Direction::Out,
            seq(),
        )
        .expect("map output");
    system
        .fpga_execute(&[coded.len() as u32])
        .expect("execute decode");
    adpcm_codec::samples_from_bytes(&system.take_object(DEC_OUT).expect("mapped"))
}

/// Runs the hardware encoder on `pcm` and returns the packed codes.
fn hw_encode(pcm: &[i16], overlap: bool) -> Vec<u8> {
    let mut system = adpcm_system(overlap);
    let bs = Bitstream::builder("adpcmencode")
        .resources(Resources::new(1_300, 6_144))
        .core_clock(timing::ADPCM_CORE_FREQ)
        .synthetic_payload(48 * 1024)
        .build();
    system
        .fpga_load(&bs.to_bytes(), Box::new(AdpcmEncCoprocessor::new()))
        .expect("load encoder");
    system
        .fpga_map_object(
            ENC_IN,
            adpcm_codec::samples_to_bytes(pcm),
            ElemSize::U16,
            Direction::In,
            seq(),
        )
        .expect("map input");
    system
        .fpga_map_object(
            ENC_OUT,
            vec![0u8; pcm.len() / 2],
            ElemSize::U8,
            Direction::Out,
            seq(),
        )
        .expect("map output");
    system
        .fpga_execute(&[pcm.len() as u32])
        .expect("execute encode");
    system.take_object(ENC_OUT).expect("mapped")
}

/// Runs the IDEA core over `data` with the given subkey schedule
/// (encryption or inverted-for-decryption) and returns the output bytes.
fn hw_idea(data: &[u8], keys: &[u16; idea::SUBKEYS], overlap: bool) -> Vec<u8> {
    let mut system = idea_system(overlap);
    let bs = Bitstream::builder("idea")
        .resources(Resources::new(3_600, 24_576))
        .core_clock(timing::IDEA_CORE_FREQ)
        .synthetic_payload(96 * 1024)
        .build();
    system
        .fpga_load(&bs.to_bytes(), Box::new(IdeaCoprocessor::new()))
        .expect("load idea");
    system
        .fpga_map_object(
            IDEA_IN,
            idea::pack_words(data),
            ElemSize::U16,
            Direction::In,
            seq(),
        )
        .expect("map input");
    system
        .fpga_map_object(
            IDEA_OUT,
            vec![0u8; data.len()],
            ElemSize::U16,
            Direction::Out,
            seq(),
        )
        .expect("map output");
    let mut params = Vec::with_capacity(1 + idea::SUBKEYS);
    params.push((data.len() / idea::BLOCK_BYTES) as u32);
    params.extend(keys.iter().map(|&k| u32::from(k)));
    system.fpga_execute(&params).expect("execute idea");
    idea::unpack_words(&system.take_object(IDEA_OUT).expect("mapped"))
}

#[test]
fn adpcm_decoder_matches_codec_bit_exactly() {
    // 8 KB of codes — 4x the dual-port RAM, so the VIM pages heavily.
    let pcm = adpcm_codec::synthetic_pcm(16 * 1024);
    let coded = adpcm_codec::encode(&pcm, &mut ());
    let sw = adpcm_codec::decode(&coded, &mut ());
    for overlap in [false, true] {
        assert_eq!(hw_decode(&coded, overlap), sw, "overlap={overlap}");
    }
}

#[test]
fn adpcm_encoder_matches_codec_bit_exactly() {
    let pcm = adpcm_codec::synthetic_pcm(16 * 1024);
    let sw = adpcm_codec::encode(&pcm, &mut ());
    for overlap in [false, true] {
        assert_eq!(hw_encode(&pcm, overlap), sw, "overlap={overlap}");
    }
}

#[test]
fn adpcm_hw_compress_decompress_pipeline_is_self_consistent() {
    // hw encode → hw decode equals sw encode → sw decode exactly
    // (ADPCM is lossy vs the original, but the pipelines must agree).
    let pcm = adpcm_codec::synthetic_pcm(8 * 1024);
    let coded = hw_encode(&pcm, true);
    let rebuilt = hw_decode(&coded, true);
    let sw = adpcm_codec::decode(&adpcm_codec::encode(&pcm, &mut ()), &mut ());
    assert_eq!(rebuilt, sw);
}

#[test]
fn idea_encrypt_matches_cipher_bit_exactly() {
    let pt = idea::synthetic_plaintext(16 * 1024);
    let ek = idea::expand_key(idea::IdeaKey([9, 8, 7, 6, 5, 4, 3, 2]));
    let sw_ct = idea::crypt_buffer(&pt, &ek, &mut ());
    for overlap in [false, true] {
        assert_eq!(hw_idea(&pt, &ek, overlap), sw_ct, "overlap={overlap}");
    }
}

#[test]
fn idea_hw_encrypt_decrypt_round_trips() {
    // Hardware both ways: encrypt with the expanded key, decrypt with
    // the inverted schedule, recover the seeded plaintext bit-exactly.
    let pt = idea::synthetic_plaintext(16 * 1024);
    let ek = idea::expand_key(idea::IdeaKey([1, 2, 3, 4, 5, 6, 7, 8]));
    let dk = idea::invert_subkeys(&ek);
    for overlap in [false, true] {
        let ct = hw_idea(&pt, &ek, overlap);
        assert_ne!(ct, pt, "ciphertext must differ from plaintext");
        let back = hw_idea(&ct, &dk, overlap);
        assert_eq!(back, pt, "overlap={overlap}");
    }
}
